"""Persistent artifact store: warm starts and streaming double-fault builds.

Two acceptance measurements for the ``repro.store`` subsystem:

* **warm-start** — building the 8x8 ``max_cardinality=2`` stuck-at
  dictionary cold (simulate + persist) vs re-constructing it from the
  store (no simulation).  Floor: the warm load must be **>=20x** faster,
  with bit-identical tables and diagnosis reports.
* **streaming scale-up** — the 10x10 double-fault dictionary (~65k fault
  sets), infeasible to rebuild per invocation before the store existed,
  built through the chunked streaming path under a ``tracemalloc`` peak
  budget, then warm-loaded.
* **incremental append** — one vector added to an already-published
  suite must delta-build bit-identically while simulating **>=10x**
  fewer scenarios than the cold rebuild (only the new column is
  simulated); wall-clock must clear a 5x floor.
* **incremental promotion** — raising ``max_cardinality`` 2->3 reuses
  every stored row and simulates only the triple tier; floor is on the
  deterministic scenario counts, with wall-clock recorded for the
  trajectory.

Results are written to ``BENCH_store.json`` (override with
``REPRO_BENCH_STORE_JSON``) so the warm/cold trajectory is tracked across
PRs; ``REPRO_BENCH_SMOKE=1`` shrinks both configurations for the CI smoke
step.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import time
import tracemalloc

from benchmarks.conftest import SMOKE, pedantic_once
from repro.core import generate_suite
from repro.fpva import full_layout
from repro.sim import ChipUnderTest, FaultDictionary
from repro.sim.faults import stuck_at_faults
from repro.store import ArtifactStore

BENCH_JSON = os.environ.get("REPRO_BENCH_STORE_JSON", "BENCH_store.json")

SIZE = 6 if SMOKE else 8
WARM_MIN_SPEEDUP = 8.0 if SMOKE else 20.0
STREAM_SIZE = 7 if SMOKE else 10
#: Peak tracemalloc budget for the streaming build.  The 10x10 build peaks
#: well under 256 MB (~180 MB measured); the budget flags any regression
#: back toward materializing the quadratic fault-set universe.
STREAM_PEAK_BUDGET_MB = 64 if SMOKE else 512
STREAM_CHUNK = 4096
#: Appending one vector re-simulates one column instead of the whole
#: suite.  The hard >=10x guarantee sits on the *scenario-count* ratio
#: below — deterministic, machine-independent, measured ~29x at 10x10 —
#: because the wall-clock ratio is structurally capped near 9x at this
#: scale: the delta still walks every stored row in Python (~7us/row for
#: the ancestor's ~65k rows: iterate, compose masks, merge, re-publish)
#: while a cold scenario simulates in ~11us, so the ratio converges to
#: (scenarios-per-row x 11us) / 7us regardless of array size.  Measured
#: 7-9x with cold varying 5-13s run-to-run in CI-class containers; the
#: 5x wall floor catches regressions without flaking on that variance.
INC_APPEND_MIN_SPEEDUP = 1.5 if SMOKE else 5.0
#: Scenario counts are deterministic, so the simulation-avoidance floor
#: holds at every scale even where wall-clock is overhead-bound.
INC_APPEND_MIN_SCENARIO_RATIO = 10.0
#: Universe slice for the cardinality-3 promotion bench — the full
#: stuck-at universe's triple tier is combinatorially out of reach.
PROMOTE_UNIVERSE = 24 if SMOKE else 36


def _record(section: str, payload: dict) -> None:
    """Merge one section into the machine-readable bench JSON."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["config"] = {"size": SIZE, "stream_size": STREAM_SIZE, "smoke": SMOKE}
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _bench_warm_start(fpva, vectors, universe, store):
    t0 = time.perf_counter()
    cold = FaultDictionary(
        fpva, vectors, universe=universe, max_cardinality=2, store=store
    )
    t_cold = time.perf_counter() - t0
    # Warm starts are the *repeated* path; best-of-3 keeps the one-off
    # first-touch costs (page cache, importer state) out of the floor.
    t_warm = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        warm = FaultDictionary(
            fpva, vectors, universe=universe, max_cardinality=2, store=store
        )
        t_warm = min(t_warm, time.perf_counter() - t0)

    assert not cold.warm_loaded and warm.warm_loaded
    assert list(warm._table.items()) == list(cold._table.items())
    rng = random.Random(0)
    for _ in range(10):
        chip = ChipUnderTest(fpva, (rng.choice(universe),))
        assert warm.diagnose_chip(chip) == cold.diagnose_chip(chip)

    return {
        "fault_sets": cold.total_fault_sets,
        "distinct_syndromes": cold.distinct_syndromes,
        "cold_build_seconds": t_cold,
        "warm_load_seconds": t_warm,
        "speedup": t_cold / t_warm,
    }


def test_warm_start_speedup(benchmark, tmp_path, capsys):
    """Acceptance: warm-start dictionary load >=20x faster than cold build."""
    fpva = full_layout(SIZE, SIZE, name=f"store-bench-{SIZE}x{SIZE}")
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)
    store = ArtifactStore(tmp_path)
    stats = pedantic_once(
        benchmark, _bench_warm_start, fpva, vectors, universe, store
    )
    benchmark.extra_info.update(stats)
    _record(f"warm_start_{SIZE}x{SIZE}_card2", stats)
    with capsys.disabled():
        print(
            f"\n{SIZE}x{SIZE} card-2 dictionary ({stats['fault_sets']} fault "
            f"sets): cold {stats['cold_build_seconds']:.2f}s vs warm "
            f"{stats['warm_load_seconds'] * 1000:.0f}ms -> "
            f"{stats['speedup']:.0f}x"
        )
    assert stats["speedup"] >= WARM_MIN_SPEEDUP, stats


def _bench_streaming(fpva, vectors, universe, store):
    tracemalloc.start()
    t0 = time.perf_counter()
    cold = FaultDictionary(
        fpva,
        vectors,
        universe=universe,
        max_cardinality=2,
        store=store,
        chunk_size=STREAM_CHUNK,
    )
    t_cold = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    t0 = time.perf_counter()
    warm = FaultDictionary(
        fpva, vectors, universe=universe, max_cardinality=2, store=store
    )
    t_warm = time.perf_counter() - t0
    assert warm.warm_loaded
    assert list(warm._table.items()) == list(cold._table.items())

    artifact = store.dictionaries.path_for(cold.digest)
    disk_bytes = sum(f.stat().st_size for f in artifact.iterdir())
    return {
        "universe": len(universe),
        "fault_sets": cold.total_fault_sets,
        "distinct_syndromes": cold.distinct_syndromes,
        "vectors": len(vectors),
        "chunk_size": STREAM_CHUNK,
        "chunks": store.dictionaries.meta(cold.digest)["chunks"],
        "cold_build_seconds": t_cold,
        "warm_load_seconds": t_warm,
        "peak_memory_mb": peak / 1e6,
        "artifact_kb": disk_bytes / 1024,
    }


def test_streaming_double_fault_scale_up(benchmark, tmp_path, capsys):
    """Acceptance: the 10x10 double-fault dictionary builds through the
    streaming path inside a fixed memory budget (and then warm-loads)."""
    fpva = full_layout(
        STREAM_SIZE, STREAM_SIZE, name=f"store-stream-{STREAM_SIZE}"
    )
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)
    store = ArtifactStore(tmp_path)
    stats = pedantic_once(
        benchmark, _bench_streaming, fpva, vectors, universe, store
    )
    benchmark.extra_info.update(stats)
    _record(
        f"streaming_build_{STREAM_SIZE}x{STREAM_SIZE}_card2", stats
    )
    with capsys.disabled():
        print(
            f"\n{STREAM_SIZE}x{STREAM_SIZE} card-2 streaming build "
            f"({stats['fault_sets']} fault sets, {stats['chunks']} chunks): "
            f"{stats['cold_build_seconds']:.1f}s at "
            f"{stats['peak_memory_mb']:.0f}MB peak, warm reload "
            f"{stats['warm_load_seconds'] * 1000:.0f}ms, artifact "
            f"{stats['artifact_kb']:.0f}KB"
        )
    assert stats["peak_memory_mb"] <= STREAM_PEAK_BUDGET_MB, stats
    assert stats["warm_load_seconds"] < stats["cold_build_seconds"], stats


def _bench_incremental_append(fpva, vectors, universe, root):
    cold_store = ArtifactStore(root / "cold")
    t0 = time.perf_counter()
    cold = FaultDictionary(
        fpva,
        vectors,
        universe=universe,
        max_cardinality=2,
        store=cold_store,
        incremental=False,
    )
    t_cold = time.perf_counter() - t0

    inc_store = ArtifactStore(root / "inc")
    FaultDictionary(
        fpva,
        vectors[:-1],
        universe=universe,
        max_cardinality=2,
        store=inc_store,
        incremental=False,
    )
    # Best-of-2, like the warm-start floor: un-publish the target between
    # attempts (the ancestor stays) so both runs take the delta path.
    t_delta = float("inf")
    for attempt in range(2):
        if attempt:
            shutil.rmtree(inc_store.dictionaries.path_for(delta.digest))
        t0 = time.perf_counter()
        delta = FaultDictionary(
            fpva,
            vectors,
            universe=universe,
            max_cardinality=2,
            store=inc_store,
        )
        t_delta = min(t_delta, time.perf_counter() - t0)
        assert delta.build_stats["mode"] == "delta", delta.build_stats
    assert delta.build_stats["new_vectors"] == 1
    assert list(delta._table.items()) == list(cold._table.items())

    return {
        "fault_sets": cold.total_fault_sets,
        "vectors": len(vectors),
        "cold_build_seconds": t_cold,
        "delta_build_seconds": t_delta,
        "speedup": t_cold / t_delta,
        "cold_scenarios": cold.build_stats["simulated_scenarios"],
        "delta_scenarios": delta.build_stats["simulated_scenarios"],
        "scenario_ratio": (
            cold.build_stats["simulated_scenarios"]
            / delta.build_stats["simulated_scenarios"]
        ),
        "floor_scenario_ratio": INC_APPEND_MIN_SCENARIO_RATIO,
        "floor_speedup": INC_APPEND_MIN_SPEEDUP,
        "reused_sets": delta.build_stats["reused_sets"],
    }


def test_incremental_append_speedup(benchmark, tmp_path, capsys):
    """Acceptance: appending one vector to the published 10x10 card-2
    suite delta-builds bit-identically, simulating >=10x fewer scenarios
    than the cold rebuild and clearing the wall-clock floor."""
    fpva = full_layout(
        STREAM_SIZE, STREAM_SIZE, name=f"store-append-{STREAM_SIZE}"
    )
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)
    stats = pedantic_once(
        benchmark, _bench_incremental_append, fpva, vectors, universe,
        tmp_path,
    )
    benchmark.extra_info.update(stats)
    _record(f"incremental_append_{STREAM_SIZE}x{STREAM_SIZE}_card2", stats)
    with capsys.disabled():
        print(
            f"\n{STREAM_SIZE}x{STREAM_SIZE} card-2 append-one-vector: cold "
            f"{stats['cold_build_seconds']:.2f}s "
            f"({stats['cold_scenarios']} scenarios) vs delta "
            f"{stats['delta_build_seconds'] * 1000:.0f}ms "
            f"({stats['delta_scenarios']} scenarios) -> "
            f"{stats['speedup']:.1f}x wall, "
            f"{stats['scenario_ratio']:.0f}x fewer scenarios"
        )
    assert stats["speedup"] >= INC_APPEND_MIN_SPEEDUP, stats
    assert (
        stats["cold_scenarios"]
        >= INC_APPEND_MIN_SCENARIO_RATIO * stats["delta_scenarios"]
    ), stats


def _bench_incremental_promotion(fpva, vectors, universe, root):
    cold_store = ArtifactStore(root / "cold")
    t0 = time.perf_counter()
    cold = FaultDictionary(
        fpva,
        vectors,
        universe=universe,
        max_cardinality=3,
        store=cold_store,
        incremental=False,
    )
    t_cold = time.perf_counter() - t0

    inc_store = ArtifactStore(root / "inc")
    ancestor = FaultDictionary(
        fpva,
        vectors,
        universe=universe,
        max_cardinality=2,
        store=inc_store,
        incremental=False,
    )
    t0 = time.perf_counter()
    delta = FaultDictionary(
        fpva, vectors, universe=universe, max_cardinality=3, store=inc_store
    )
    t_delta = time.perf_counter() - t0

    assert delta.build_stats["mode"] == "delta", delta.build_stats
    assert delta.build_stats["reused_sets"] == ancestor.total_fault_sets
    assert list(delta._table.items()) == list(cold._table.items())

    return {
        "universe": len(universe),
        "fault_sets": cold.total_fault_sets,
        "reused_sets": delta.build_stats["reused_sets"],
        "promoted_sets": delta.build_stats["promoted_sets"],
        "cold_build_seconds": t_cold,
        "delta_build_seconds": t_delta,
        "speedup": t_cold / t_delta,
        "cold_scenarios": cold.build_stats["simulated_scenarios"],
        "delta_scenarios": delta.build_stats["simulated_scenarios"],
    }


def test_incremental_promotion_scenarios(benchmark, tmp_path, capsys):
    """Acceptance: promoting a stored card-2 dictionary to card-3 reuses
    every row and never simulates more scenarios than the cold build.

    The floor sits on the deterministic scenario counts rather than
    wall-clock: the triple tier dominates both builds, so the timing
    ratio is noise-bound, but the reuse accounting is exact.
    """
    fpva = full_layout(
        STREAM_SIZE, STREAM_SIZE, name=f"store-promote-{STREAM_SIZE}"
    )
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)[:PROMOTE_UNIVERSE]
    stats = pedantic_once(
        benchmark, _bench_incremental_promotion, fpva, vectors, universe,
        tmp_path,
    )
    benchmark.extra_info.update(stats)
    _record(
        f"incremental_promotion_{STREAM_SIZE}x{STREAM_SIZE}_card3", stats
    )
    with capsys.disabled():
        print(
            f"\n{STREAM_SIZE}x{STREAM_SIZE} card-3 promotion "
            f"({stats['reused_sets']} reused, {stats['promoted_sets']} "
            f"promoted): cold {stats['cold_build_seconds']:.1f}s vs delta "
            f"{stats['delta_build_seconds']:.1f}s -> "
            f"{stats['speedup']:.1f}x"
        )
    assert stats["delta_scenarios"] <= stats["cold_scenarios"], stats
