"""Ablation benches for the design choices DESIGN.md calls out.

Not part of the paper's evaluation, but each one isolates a mechanism the
paper's method depends on:

* solver backend — HiGHS vs the built-in branch-and-bound on the same
  flow-path ILP (exactness means identical path counts);
* subblock size — the paper fixed 5x5; sweep 3/5/7 on a 15x15 array;
* ILP vs greedy heuristic path generation — what the optimization buys;
* ILP vs sweep cut-set generation on a small array.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import pedantic_once
from repro.core import (
    CutSetGenerator,
    FlowPathGenerator,
    GreedyPathGenerator,
    HierarchicalPathGenerator,
    measure_coverage,
)
from repro.fpva import full_layout, table1_layout
from repro.ilp import SolveOptions


@pytest.mark.parametrize("backend", ["highs", "branch-and-bound"])
def test_ablation_solver_backend(benchmark, backend):
    fpva = full_layout(4, 4)
    options = SolveOptions(backend=backend, time_limit=300)
    gen = FlowPathGenerator(fpva, options)
    result = pedantic_once(benchmark, gen.generate)
    assert result.proven_optimal
    benchmark.extra_info["np"] = result.np_paths
    # Exact solvers agree on the optimum: the full 4x4 needs 2 paths.
    assert result.np_paths == 2


@pytest.mark.parametrize("subblock", [3, 5, 7])
def test_ablation_subblock_size(benchmark, subblock, capsys):
    fpva = table1_layout(15)
    gen = HierarchicalPathGenerator(fpva, subblock=subblock)
    result = pedantic_once(benchmark, gen.generate)
    coverage = measure_coverage(fpva, result.vectors, include_leak_pairs=False)
    assert not coverage.sa0_missing
    benchmark.extra_info["np"] = result.np_paths
    with capsys.disabled():
        print(f"\n15x15 subblock={subblock}: np={result.np_paths}")


def test_ablation_greedy_vs_ilp(benchmark, capsys):
    fpva = table1_layout(5)
    ilp_np = FlowPathGenerator(fpva, SolveOptions(time_limit=120)).generate().np_paths

    def greedy():
        return GreedyPathGenerator(fpva, seed=7).generate()

    greedy_result = pedantic_once(benchmark, greedy)
    benchmark.extra_info.update(
        {"np_greedy": greedy_result.np_paths, "np_ilp": ilp_np}
    )
    # The ILP is optimal; greedy may tie but never beat it.
    assert ilp_np <= greedy_result.np_paths
    with capsys.disabled():
        print(f"\n5x5 paths: ILP={ilp_np}, greedy={greedy_result.np_paths}")


@pytest.mark.parametrize("strategy", ["ilp", "sweep"])
def test_ablation_cut_strategy(benchmark, strategy):
    fpva = table1_layout(5)
    gen = CutSetGenerator(fpva, strategy=strategy, solve_options=SolveOptions(time_limit=120))
    result = pedantic_once(benchmark, gen.generate)
    assert not result.uncovered
    benchmark.extra_info["nc"] = result.nc_cuts
    assert result.nc_cuts == 8  # both strategies land on the paper's count
