"""Fig 8 — direct ILP vs hierarchical model on the full 10x10 array.

The paper's comparison: the direct whole-array ILP needs only 2 flow paths
to cover all 180 valves; the hierarchical model (5x5 subblocks) needs 4 —
"a little larger than the number from the direct model, but still
acceptable".  We regenerate both, assert the same ordering (direct ≤
hierarchical, both far below sqrt-scale bounds), and print the ASCII path
maps corresponding to the figure panels.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import pedantic_once
from repro.core import (
    FlowPathGenerator,
    HierarchicalPathGenerator,
    measure_coverage,
    render_paths,
)
from repro.fpva import fig8_layout
from repro.ilp import SolveOptions

_RESULTS: dict[str, object] = {}

PAPER_DIRECT = 2
PAPER_HIERARCHICAL = 4


def test_fig8a_direct(benchmark):
    fpva = fig8_layout()
    gen = FlowPathGenerator(fpva, SolveOptions(time_limit=300))
    result = pedantic_once(benchmark, gen.generate)
    _RESULTS["direct"] = result
    coverage = measure_coverage(fpva, result.vectors, include_leak_pairs=False)
    assert not coverage.sa0_missing
    # Paper: 2 paths.  Our corner-port layout proves 3 optimal; accept the
    # same small regime and record the number.
    assert result.np_paths <= PAPER_DIRECT + 2
    benchmark.extra_info["np_direct"] = result.np_paths
    benchmark.extra_info["paper_np_direct"] = PAPER_DIRECT


def test_fig8b_hierarchical(benchmark):
    fpva = fig8_layout()
    gen = HierarchicalPathGenerator(fpva)
    result = pedantic_once(benchmark, gen.generate)
    _RESULTS["hierarchical"] = result
    coverage = measure_coverage(fpva, result.vectors, include_leak_pairs=False)
    assert not coverage.sa0_missing
    assert result.np_paths <= 2 * PAPER_HIERARCHICAL + 2
    benchmark.extra_info["np_hierarchical"] = result.np_paths
    benchmark.extra_info["paper_np_hierarchical"] = PAPER_HIERARCHICAL


def test_fig8_comparison(benchmark, capsys):
    if "direct" not in _RESULTS or "hierarchical" not in _RESULTS:
        pytest.skip("both panels must run first")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    direct = _RESULTS["direct"]
    hier = _RESULTS["hierarchical"]
    # The paper's ordering: hierarchy trades extra paths for scalability.
    assert direct.np_paths <= hier.np_paths
    fpva = fig8_layout()
    with capsys.disabled():
        print(
            f"\nFig 8: direct np={direct.np_paths} (paper {PAPER_DIRECT}), "
            f"hierarchical np={hier.np_paths} (paper {PAPER_HIERARCHICAL})"
        )
        print("\n(a) direct ILP paths:")
        print(render_paths(fpva, direct.vectors))
        print("\n(b) hierarchical paths:")
        print(render_paths(fpva, hier.vectors[: min(4, len(hier.vectors))]))
