"""Test generation on the ExecutionContext: shared kernels, batched hardening.

Two acceptance measurements for the PR-5 session refactor:

* **context-shared generation** — generating the full suite compiles the
  reachability kernel exactly **once** (pre-context, the nine private
  ``PressureSimulator`` call sites each compiled their own), and a second
  generation on the same session compiles **zero**; cold vs shared wall
  clock is recorded alongside for the trajectory.
* **batched double-fault hardening** — `harden_double_faults` through the
  session's :class:`~repro.sim.kernel.BatchEvaluator` (per-vector
  scenario grids, 64 scenarios per word, one flush) vs the serial
  ``engine="object"`` chip-at-a-time reference.  Floor: **>=3x** on the
  8x8 layout, with bit-identical audits and generated vectors.

Results are written to ``BENCH_testgen.json`` (override with
``REPRO_BENCH_TESTGEN_JSON``) so the trajectory is tracked across PRs;
``REPRO_BENCH_SMOKE=1`` shrinks the configuration for the CI smoke step.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import SMOKE, pedantic_once
from repro.context import ExecutionContext
from repro.core import TestGenerator, generate_suite
from repro.core.repair import harden_double_faults
from repro.core.vectors import TestSet
from repro.fpva import full_layout
from repro.sim import ReachabilityKernel

BENCH_JSON = os.environ.get("REPRO_BENCH_TESTGEN_JSON", "BENCH_testgen.json")

SIZE = 6 if SMOKE else 8
HARDEN_MIN_SPEEDUP = 2.0 if SMOKE else 3.0


def _record(section: str, payload: dict) -> None:
    """Merge one section into the machine-readable bench JSON."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["config"] = {"size": SIZE, "smoke": SMOKE}
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


class _CompileCounter:
    """Counts ReachabilityKernel compiles while installed."""

    def __init__(self):
        self.count = 0
        self._original = ReachabilityKernel.__init__

    def __enter__(self):
        original = self._original
        counter = self

        def counting(kernel_self, fpva):
            counter.count += 1
            original(kernel_self, fpva)

        ReachabilityKernel.__init__ = counting
        return self

    def __exit__(self, *exc):
        ReachabilityKernel.__init__ = self._original
        return False


def _bench_generation(fpva):
    # Cold: a fresh session generates the full suite (paths via the
    # simulation-heavy greedy strategy, cuts via sweep, leakage on).
    with _CompileCounter() as cold_compiles:
        cold_ctx = ExecutionContext(fpva)
        t0 = time.perf_counter()
        cold_suite = TestGenerator(
            fpva, path_strategy="greedy", cut_strategy="sweep", context=cold_ctx
        ).generate().testset
        t_cold = time.perf_counter() - t0

    # Shared: the same session generates again — kernel and pooled batch
    # evaluations are already warm, so zero compiles happen.
    with _CompileCounter() as shared_compiles:
        t0 = time.perf_counter()
        shared_suite = TestGenerator(
            fpva, path_strategy="greedy", cut_strategy="sweep", context=cold_ctx
        ).generate().testset
        t_shared = time.perf_counter() - t0

    assert cold_suite.all_vectors() == shared_suite.all_vectors()
    return {
        "vectors": cold_suite.total,
        "cold_seconds": t_cold,
        "shared_seconds": t_shared,
        "cold_kernel_compiles": cold_compiles.count,
        "shared_kernel_compiles": shared_compiles.count,
    }


def test_context_shared_generation(benchmark, capsys):
    """Acceptance: exactly one kernel compile per generation session."""
    fpva = full_layout(SIZE, SIZE, name=f"testgen-bench-{SIZE}x{SIZE}")
    stats = pedantic_once(benchmark, _bench_generation, fpva)
    benchmark.extra_info.update(stats)
    _record(f"context_shared_generation_{SIZE}x{SIZE}", stats)
    with capsys.disabled():
        print(
            f"\n{SIZE}x{SIZE} generation ({stats['vectors']} vectors): cold "
            f"{stats['cold_seconds']:.2f}s / {stats['cold_kernel_compiles']} "
            f"compile, context-shared {stats['shared_seconds']:.2f}s / "
            f"{stats['shared_kernel_compiles']} compiles"
        )
    assert stats["cold_kernel_compiles"] == 1, stats
    assert stats["shared_kernel_compiles"] == 0, stats


def _copy_testset(ts: TestSet) -> TestSet:
    return TestSet(
        fpva=ts.fpva,
        flow_paths=list(ts.flow_paths),
        cut_sets=list(ts.cut_sets),
        leakage=list(ts.leakage),
    )


def _bench_hardening(fpva, suite):
    serial_ts = _copy_testset(suite)
    t0 = time.perf_counter()
    serial = harden_double_faults(
        fpva, serial_ts, context=ExecutionContext(fpva, engine="object")
    )
    t_serial = time.perf_counter() - t0

    batched_ts = _copy_testset(suite)
    t0 = time.perf_counter()  # kernel compile is part of the batched cost
    batched = harden_double_faults(
        fpva, batched_ts, context=ExecutionContext(fpva)
    )
    t_batched = time.perf_counter() - t0

    assert batched.pairs_audited == serial.pairs_audited
    assert batched.pairs_missed == serial.pairs_missed
    assert batched.vectors_added == serial.vectors_added
    assert batched_ts.flow_paths == serial_ts.flow_paths
    assert batched_ts.cut_sets == serial_ts.cut_sets
    return {
        "pairs_audited": serial.pairs_audited,
        "pairs_missed": len(serial.pairs_missed),
        "vectors": suite.total,
        "serial_seconds": t_serial,
        "batched_seconds": t_batched,
        "speedup": t_serial / t_batched,
    }


def test_hardening_batched_speedup(benchmark, capsys):
    """Acceptance: >=3x batched double-fault hardening on the 8x8 layout,
    bit-identical generated vectors."""
    fpva = full_layout(SIZE, SIZE, name=f"testgen-bench-{SIZE}x{SIZE}")
    suite = generate_suite(fpva)
    stats = pedantic_once(benchmark, _bench_hardening, fpva, suite)
    benchmark.extra_info.update(stats)
    _record(f"hardening_{SIZE}x{SIZE}", stats)
    with capsys.disabled():
        print(
            f"\n{SIZE}x{SIZE} hardening audit ({stats['pairs_audited']} pairs x "
            f"{stats['vectors']} vectors): serial {stats['serial_seconds']:.2f}s "
            f"vs batched {stats['batched_seconds']:.2f}s -> "
            f"{stats['speedup']:.1f}x"
        )
    assert stats["speedup"] >= HARDEN_MIN_SPEEDUP, stats
