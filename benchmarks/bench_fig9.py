"""Fig 9 — flow paths for the 20x20 array with channels and obstacles.

The paper shows 16 flow paths covering all 744 valves of a 20x20 array
containing three transport channels and two obstacle areas, demonstrating
the method on irregular structures.  We regenerate the path set with the
hierarchical model, assert full coverage with a path count in the same
regime, and print the coverage map.
"""

from __future__ import annotations

from benchmarks.conftest import pedantic_once
from repro.core import HierarchicalPathGenerator, coverage_map, measure_coverage
from repro.fpva import fig9_layout

PAPER_NP = 16


def test_fig9_paths(benchmark, capsys):
    fpva = fig9_layout()
    gen = HierarchicalPathGenerator(fpva)
    result = pedantic_once(benchmark, gen.generate)

    coverage = measure_coverage(fpva, result.vectors, include_leak_pairs=False)
    assert not coverage.sa0_missing
    assert fpva.valve_count == 744
    # Paper: 16 paths.  Same small regime required.
    assert result.np_paths <= PAPER_NP + 4

    benchmark.extra_info["np"] = result.np_paths
    benchmark.extra_info["paper_np"] = PAPER_NP
    with capsys.disabled():
        print(
            f"\nFig 9: {result.np_paths} flow paths cover all "
            f"{fpva.valve_count} valves (paper: {PAPER_NP} paths)"
        )
        print("\nper-valve open counts across the path set:")
        print(coverage_map(fpva, result.vectors))
