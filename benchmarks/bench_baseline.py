"""Section IV baseline comparison — proposed suite vs 2*n_v per-valve test.

"Consider a simple baseline method where only one valve is switched open or
closed each time for fault test.  The total number of test vectors in this
case would be two times the number of valves, a squared complexity compared
with the proposed method."

For each array we generate the proposed suite and the naive baseline and
report the vector-count ratio.  The baseline is *generated* (not just
counted) for the small arrays so the comparison is between two real,
fault-complete suites.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import DEFAULT_SIZES, pedantic_once
from repro.core import BaselineGenerator, TestGenerator
from repro.fpva import TABLE1_VALVE_COUNTS, table1_layout

_GENERATE_BASELINE_UP_TO = 10  # full baseline generation is itself O(n_v) solves


@pytest.mark.parametrize("n", [n for n in DEFAULT_SIZES if n <= _GENERATE_BASELINE_UP_TO])
def test_baseline_generated(benchmark, n, capsys):
    fpva = table1_layout(n)
    gen = BaselineGenerator(fpva)
    result = pedantic_once(benchmark, gen.generate)
    proposed = TestGenerator(fpva).generate().report

    assert result.total + 2 * len(result.skipped) == 2 * fpva.valve_count
    assert proposed.total_vectors < result.total
    ratio = result.total / proposed.total_vectors
    benchmark.extra_info.update(
        {"baseline_N": result.total, "proposed_N": proposed.total_vectors}
    )
    with capsys.disabled():
        print(
            f"\n{fpva.name}: baseline {result.total} vectors vs proposed "
            f"{proposed.total_vectors} ({ratio:.1f}x reduction)"
        )


def test_baseline_scaling_counts(benchmark, capsys):
    """The asymptotic story: 2*n_v vs ≈2*sqrt(n_v) across all five arrays."""

    def tabulate():
        rows = []
        for n, nv in TABLE1_VALVE_COUNTS.items():
            baseline = 2 * nv
            sqrt_scale = 2 * math.sqrt(nv)
            rows.append((n, nv, baseline, sqrt_scale))
        return rows

    rows = benchmark(tabulate)
    with capsys.disabled():
        print("\n  array     nv   baseline(2nv)   ~2*sqrt(nv)")
        for n, nv, baseline, sqrt_scale in rows:
            print(f"  {n}x{n:<4} {nv:>6} {baseline:>10} {sqrt_scale:>13.0f}")
    for _, nv, baseline, sqrt_scale in rows:
        assert baseline > 10 * sqrt_scale / 2
