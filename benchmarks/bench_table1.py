"""Table I — test-vector generation for the five benchmark arrays.

Regenerates every column of the paper's Table I: n_p (flow paths), n_c
(cut-sets), n_l (control-leakage vectors), N, and the generation runtimes.

Absolute runtimes are not comparable (paper: C++ + commercial ILP solver,
2017 hardware), but the shape assertions encode the paper's claims:

* every valve is covered by the suite;
* N is O(sqrt(n_v)) — "roughly two times the square root of the number of
  valves" — and far below the 2*n_v baseline;
* n_c equals n_r + n_c - 2 on these layouts.

Run with ``REPRO_BENCH_FULL=1`` to include the 20x20 and 30x30 arrays.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import DEFAULT_SIZES, pedantic_once
from repro.core import TestGenerator, measure_coverage
from repro.fpva import TABLE1_PAPER, table1_layout

_PAPER = {int(row.dimension.split("x")[0]): row for row in TABLE1_PAPER}
_RESULTS: dict[int, object] = {}


@pytest.mark.parametrize("n", DEFAULT_SIZES)
def test_table1_row(benchmark, n):
    fpva = table1_layout(n)
    # Table I uses the hierarchical model with 5x5 subblocks throughout
    # (the 5x5 array's "1x1" top level degenerates to the direct model).
    strategy = "direct" if n == 5 else "hierarchical"

    def generate():
        return TestGenerator(fpva, path_strategy=strategy).generate()

    result = pedantic_once(benchmark, generate)
    _RESULTS[n] = result
    report = result.report
    paper = _PAPER[n]

    # Structural reproduction checks.
    assert report.nv == paper.nv
    coverage = measure_coverage(
        fpva, result.testset.all_vectors(), include_leak_pairs=False
    )
    assert coverage.complete_stuck_at, coverage.summary()

    # Shape: N = O(sqrt(n_v)); the paper reports N ≈ 2*sqrt(n_v).
    assert report.total_vectors <= 4 * math.sqrt(report.nv) + 10
    assert report.total_vectors < 2 * report.nv / 3

    # Cut-sets: straight row/column walls → n_r + n_c - 2, Table I exactly.
    assert report.nc_cuts == paper.nc_cuts

    benchmark.extra_info.update(
        {
            "np": report.np_paths,
            "nc": report.nc_cuts,
            "nl": report.nl_leak,
            "N": report.total_vectors,
            "paper_np": paper.np_paths,
            "paper_nc": paper.nc_cuts,
            "paper_nl": paper.nl_leak,
            "paper_N": paper.total_vectors,
        }
    )


def test_print_table(benchmark, capsys):
    """Print the reproduced Table I next to the published one."""
    if not _RESULTS:
        pytest.skip("row benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "",
        "Table I reproduction (measured vs paper):",
        f"{'array':>8} {'nv':>5} | {'np':>4} {'nc':>4} {'nl':>4} {'N':>4} "
        f"| {'paper np':>8} {'nc':>4} {'nl':>4} {'N':>4}",
    ]
    for n in sorted(_RESULTS):
        rep = _RESULTS[n].report
        paper = _PAPER[n]
        lines.append(
            f"{rep.array:>8} {rep.nv:>5} | {rep.np_paths:>4} {rep.nc_cuts:>4} "
            f"{rep.nl_leak:>4} {rep.total_vectors:>4} | {paper.np_paths:>8} "
            f"{paper.nc_cuts:>4} {paper.nl_leak:>4} {paper.total_vectors:>4}"
        )
    with capsys.disabled():
        print("\n".join(lines))
