"""Adaptive vs full-suite diagnosis — applied-vector counts and wall-clock.

The full-suite path applies all N generated vectors to every chip before
the dictionary lookup.  The adaptive engine schedules vectors by
information gain and stops at the full-suite verdict; this bench records
how many applications that actually takes, per scenario, on the 8x8
acceptance array and the Table I layouts.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import TRIALS, pedantic_once
from repro.core import generate_suite
from repro.engine import AdaptiveDiagnoser, get_scenario, scenario_names
from repro.fpva import full_layout, table1_layout
from repro.sim import ChipUnderTest, FaultDictionary


def _session_stats(fpva, vectors, scenario, trials, seed=0):
    universe = scenario.universe(fpva)
    dictionary = FaultDictionary(fpva, vectors, universe=universe)
    engine = AdaptiveDiagnoser(dictionary)
    rng = random.Random(seed)
    applied = []
    mismatches = 0
    t_adaptive = t_full = 0.0
    for _ in range(trials):
        chip = ChipUnderTest(fpva, scenario.sample(universe, rng, 1))
        t0 = time.perf_counter()
        session = engine.diagnose(chip)
        t_adaptive += time.perf_counter() - t0
        t0 = time.perf_counter()
        full = dictionary.diagnose_chip(chip)
        t_full += time.perf_counter() - t0
        applied.append(session.num_applied)
        if session.report.candidates != full.candidates:
            mismatches += 1
    return {
        "mean_applied": sum(applied) / len(applied),
        "max_applied": max(applied),
        "full": len(vectors),
        "mismatches": mismatches,
        "t_adaptive": t_adaptive,
        "t_full": t_full,
    }


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_adaptive_vector_savings_8x8(benchmark, scenario_name, capsys):
    """Acceptance: ≥30% fewer applied vectors than the full suite on 8x8."""
    fpva = full_layout(8, 8, name="adaptive-8x8")
    vectors = generate_suite(fpva).all_vectors()
    scenario = get_scenario(scenario_name)
    stats = pedantic_once(
        benchmark, _session_stats, fpva, vectors, scenario, TRIALS
    )
    benchmark.extra_info.update(stats)
    saving = 1.0 - stats["mean_applied"] / stats["full"]
    with capsys.disabled():
        print(
            f"\n8x8 {scenario_name}: mean {stats['mean_applied']:.1f} / "
            f"{stats['full']} vectors ({saving:.0%} saved), "
            f"max {stats['max_applied']}, "
            f"adaptive {stats['t_adaptive']:.2f}s vs full {stats['t_full']:.2f}s, "
            f"{stats['mismatches']} verdict mismatches"
        )
    assert stats["mismatches"] == 0
    assert saving >= 0.30


@pytest.mark.parametrize("n", (5, 10))
def test_adaptive_savings_table1(benchmark, n, capsys):
    """The same comparison on the paper's benchmark layouts."""
    fpva = table1_layout(n)
    vectors = generate_suite(fpva).all_vectors()
    stats = pedantic_once(
        benchmark,
        _session_stats,
        fpva,
        vectors,
        get_scenario("stuck-at"),
        TRIALS,
    )
    benchmark.extra_info.update(stats)
    saving = 1.0 - stats["mean_applied"] / stats["full"]
    with capsys.disabled():
        print(
            f"\n{fpva.name}: mean {stats['mean_applied']:.1f} / {stats['full']} "
            f"vectors ({saving:.0%} saved), {stats['mismatches']} mismatches"
        )
    assert stats["mismatches"] == 0
    assert saving > 0.0
