"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_FULL=1``  — include the large (20x20 / 30x30) arrays in the
  Table I and fault-injection benches (several minutes).
* ``REPRO_BENCH_TRIALS`` — fault-injection trials per configuration
  (default 100; the paper used 10 000).
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "100"))

#: Reduced-configuration mode for the CI smoke step: smaller arrays and
#: relaxed speedup floors so the kernel bench finishes in seconds while
#: still catching order-of-magnitude regressions.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

#: Where machine-readable bench results are written (perf trajectory
#: tracking across PRs).
BENCH_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_kernel.json")

#: Sizes benchmarked by default vs. under REPRO_BENCH_FULL=1.
DEFAULT_SIZES = (5, 10, 15, 20, 30) if FULL else (5, 10, 15)


def pedantic_once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight target exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def bench_sizes():
    return DEFAULT_SIZES


@pytest.fixture(scope="session")
def trials():
    return TRIALS
