"""Section IV fault-injection experiment.

"For each valve array in Table I we randomly introduced one, two, three,
four and five faults, respectively, and applied the generated test vectors.
We repeated this process 10 000 times.  In these test cases, the test
vectors captured all the faults."

This bench reruns that campaign (trial count via REPRO_BENCH_TRIALS;
default 100 per configuration for CI speed) and asserts 100 % detection.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DEFAULT_SIZES, TRIALS, pedantic_once
from repro.core import TestGenerator
from repro.fpva import table1_layout
from repro.sim import run_sweep

_SIZES = [n for n in DEFAULT_SIZES if n <= 15] or [5]
_SUITES: dict[int, object] = {}


def _suite_for(n):
    if n not in _SUITES:
        _SUITES[n] = TestGenerator(table1_layout(n)).generate().testset
    return _SUITES[n]


@pytest.mark.parametrize("n", _SIZES)
def test_fault_injection_sweep(benchmark, n, capsys):
    suite = _suite_for(n)
    fpva = suite.fpva

    def campaign():
        return run_sweep(
            fpva,
            suite.all_vectors(),
            fault_counts=(1, 2, 3, 4, 5),
            trials=TRIALS,
            seed=2017,
        )

    sweep = pedantic_once(benchmark, campaign)

    rows = []
    for k, result in sorted(sweep.items()):
        rows.append(
            f"  {fpva.name}: k={k} faults -> {result.detected}/{result.trials} "
            f"detected ({result.detection_rate:.2%})"
        )
        # The paper observed 100% detection in 10 000 trials.
        assert result.all_detected, result.undetected_examples
    benchmark.extra_info["trials_per_k"] = TRIALS
    with capsys.disabled():
        print("\n" + "\n".join(rows))
