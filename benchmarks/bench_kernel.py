"""Compiled bitmask kernel vs the retained legacy path, and backend tiers.

Acceptance measurements, each asserting exact result equality before
comparing wall-clock:

* **dictionary build** — the 8x8 ``max_cardinality=2`` stuck-at dictionary
  (~25k fault sets x full suite), the pure-Python object-graph engine one
  chip at a time vs the canonicalize-dedup-batch kernel path.  Floor: >=5x.
* **campaign throughput** — full-suite application over hundreds of random
  double-fault chips, object-engine ``Tester.run`` per chip vs one batched
  kernel evaluation (compile included).  Floor: >=3x.
* **backend tiers** — the 16x16 (and, under ``REPRO_BENCH_FULL=1``, 20x20)
  card-2 dictionary build per registry backend, tables asserted identical
  across tiers.  Floor: tile >= 1.5x over the single-word sweep (1.3x in
  smoke mode); optional jit/gpu tiers are recorded when their dependency
  is present and noted absent otherwise — never a failure.
* **scalar micro-benchmark** — the hoisted allocation-free single-query
  BFS (adaptive diagnosis's cost profile), pinned against an absolute
  queries/s floor plus a never-slower-than-the-allocating-formulation
  ratio.

Results are also written to ``BENCH_kernel.json`` (override with
``REPRO_BENCH_JSON``) so the perf trajectory is tracked across PRs;
``REPRO_BENCH_SMOKE=1`` shrinks the configuration for the CI smoke step.
"""

from __future__ import annotations

import json
import os
import random
import time
from collections import deque

import pytest

from benchmarks.conftest import BENCH_JSON, FULL, SMOKE, pedantic_once
from repro.context import ExecutionContext
from repro.core import generate_suite
from repro.engine import get_scenario
from repro.fpva import full_layout
from repro.sim import (
    BatchEvaluator,
    ChipUnderTest,
    CompiledFaultSet,
    FaultDictionary,
    ReachabilityKernel,
    Tester,
)
from repro.sim.backends import availability
from repro.sim.faults import stuck_at_faults

SIZE = 6 if SMOKE else 8
DICT_MIN_SPEEDUP = 3.0 if SMOKE else 5.0
CAMPAIGN_MIN_SPEEDUP = 2.0 if SMOKE else 3.0
CAMPAIGN_TRIALS = 80 if SMOKE else 300

#: Backend-tier bench: arrays large enough that the word sweep's diameter
#: term dominates (the regime the tile backend removes).  20x20 joins
#: under REPRO_BENCH_FULL=1.
BACKEND_SIZES = (16, 20) if FULL else (16,)
BACKEND_SAMPLE = 60 if SMOKE else 150
TILE_MIN_SPEEDUP = 1.3 if SMOKE else 1.5

#: Scalar pin: ~30ms per rep, so the query count stays fixed even in
#: smoke mode — fewer queries only adds timing noise, not speed.
SCALAR_QUERIES = 2000
SCALAR_MIN_QPS = 20_000.0
#: Measured ~1.0-1.2x; floored at 0.8 so shared-runner scheduling noise
#: cannot fail a genuinely-hoisted build.
SCALAR_MIN_RATIO = 0.8


def _record(section: str, payload: dict) -> None:
    """Merge one section into the machine-readable bench JSON."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["config"] = {
        "size": SIZE,
        "smoke": SMOKE,
        "backend_sizes": list(BACKEND_SIZES),
        "backend_availability": availability(),
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _bench_dictionary(fpva, vectors, universe):
    t0 = time.perf_counter()
    legacy = FaultDictionary(
        fpva,
        vectors,
        universe=universe,
        max_cardinality=2,
        context=ExecutionContext(fpva, engine="object"),
    )
    t_legacy = time.perf_counter() - t0
    t0 = time.perf_counter()
    kernel = FaultDictionary(
        fpva,
        vectors,
        universe=universe,
        max_cardinality=2,
        context=ExecutionContext(fpva),
    )
    t_kernel = time.perf_counter() - t0
    assert list(kernel._table.items()) == list(legacy._table.items())
    assert kernel.resolution() == legacy.resolution()
    return {
        "fault_sets": sum(len(v) for v in legacy._table.values()),
        "distinct_syndromes": legacy.distinct_syndromes,
        "legacy_seconds": t_legacy,
        "kernel_seconds": t_kernel,
        "speedup": t_legacy / t_kernel,
    }


def test_dictionary_build_speedup(benchmark, capsys):
    """Acceptance: >=5x on the 8x8 double-fault dictionary build."""
    fpva = full_layout(SIZE, SIZE, name=f"kernel-bench-{SIZE}x{SIZE}")
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)
    stats = pedantic_once(benchmark, _bench_dictionary, fpva, vectors, universe)
    benchmark.extra_info.update(stats)
    _record(f"dictionary_build_{SIZE}x{SIZE}_card2", stats)
    with capsys.disabled():
        print(
            f"\n{SIZE}x{SIZE} card-2 dictionary ({stats['fault_sets']} fault "
            f"sets, {len(vectors)} vectors): legacy "
            f"{stats['legacy_seconds']:.2f}s vs kernel "
            f"{stats['kernel_seconds']:.2f}s -> {stats['speedup']:.1f}x"
        )
    assert stats["speedup"] >= DICT_MIN_SPEEDUP, stats


def _bench_campaign(fpva, vectors, trials):
    scenario = get_scenario("stuck-at")
    universe = scenario.universe(fpva)
    rng = random.Random(0)
    chips = [scenario.sample(universe, rng, 2) for _ in range(trials)]
    legacy_tester = Tester(fpva, engine="object")  # pure-Python reference

    t0 = time.perf_counter()
    legacy_syndromes = [
        legacy_tester.run(ChipUnderTest(fpva, faults), vectors).syndrome()
        for faults in chips
    ]
    t_legacy = time.perf_counter() - t0

    t0 = time.perf_counter()  # kernel compile is part of the batched cost
    evaluator = BatchEvaluator(Tester(fpva).simulator.kernel, vectors)
    fires_cache: dict = {}
    rows = [
        evaluator.slot_row(CompiledFaultSet(evaluator.kernel, faults, fires_cache))
        for faults in chips
    ]
    evaluator.flush()
    names = [v.name for v in vectors]
    kernel_syndromes = [
        tuple(
            (names[vi], evaluator.observed_items(slot))
            for vi, slot in enumerate(row)
            if not evaluator.passed(vi, slot)
        )
        for row in rows
    ]
    t_kernel = time.perf_counter() - t0

    assert kernel_syndromes == legacy_syndromes
    return {
        "trials": trials,
        "vectors": len(vectors),
        "distinct_scenarios": evaluator.distinct_scenarios,
        "legacy_seconds": t_legacy,
        "kernel_seconds": t_kernel,
        "speedup": t_legacy / t_kernel,
        "legacy_chips_per_second": trials / t_legacy,
        "kernel_chips_per_second": trials / t_kernel,
    }


def test_campaign_throughput_speedup(benchmark, capsys):
    """Acceptance: >=3x full-suite campaign throughput."""
    fpva = full_layout(SIZE, SIZE, name=f"kernel-bench-{SIZE}x{SIZE}")
    vectors = generate_suite(fpva).all_vectors()
    stats = pedantic_once(benchmark, _bench_campaign, fpva, vectors, CAMPAIGN_TRIALS)
    benchmark.extra_info.update(stats)
    _record(f"campaign_full_suite_throughput_{SIZE}x{SIZE}", stats)
    with capsys.disabled():
        print(
            f"\n{SIZE}x{SIZE} full-suite campaign ({stats['trials']} chips x "
            f"{stats['vectors']} vectors, {stats['distinct_scenarios']} "
            f"distinct states): legacy {stats['legacy_chips_per_second']:.0f} "
            f"chips/s vs kernel {stats['kernel_chips_per_second']:.0f} "
            f"chips/s -> {stats['speedup']:.1f}x"
        )
    assert stats["speedup"] >= CAMPAIGN_MIN_SPEEDUP, stats


def _bench_backend_tiers(fpva, vectors, sample):
    """Card-2 dictionary build per registry backend; tables must agree.

    Each tier gets a fresh session (its own kernel compile + backend
    attach), so the timed region covers exactly what a user selecting
    that tier pays — including the tile backend's elimination-plan
    compile.  Optional tiers without their dependency are recorded as
    absent, never failed.
    """
    stats: dict = {}
    tables = {}
    for name, why in availability().items():
        if why is not None:
            stats[name] = {"available": False, "reason": why}
            continue
        context = ExecutionContext(fpva, kernel_backend=name)
        t0 = time.perf_counter()
        built = FaultDictionary(
            fpva,
            vectors,
            universe=sample,
            max_cardinality=2,
            context=context,
        )
        seconds = time.perf_counter() - t0
        tables[name] = list(built._table.items())
        stats[name] = {
            "available": True,
            "seconds": seconds,
            "fault_sets": sum(len(v) for v in built._table.values()),
        }
    for name, table in tables.items():
        assert table == tables["word"], f"backend {name!r} diverges from word"
    stats["tile_speedup_vs_word"] = (
        stats["word"]["seconds"] / stats["tile"]["seconds"]
    )
    return stats


@pytest.mark.parametrize("size", BACKEND_SIZES)
def test_backend_tier_floors(benchmark, capsys, size):
    """Acceptance: tile >=1.5x over the word sweep on the card-2 build."""
    fpva = full_layout(size, size, name=f"backend-bench-{size}x{size}")
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)
    sample = random.Random(42).sample(
        universe, min(BACKEND_SAMPLE, len(universe))
    )
    stats = pedantic_once(benchmark, _bench_backend_tiers, fpva, vectors, sample)
    benchmark.extra_info.update(stats)
    _record(f"backend_tiers_{size}x{size}_card2", stats)
    with capsys.disabled():
        per_tier = ", ".join(
            f"{name} {tier['seconds']:.2f}s"
            if tier.get("available")
            else f"{name} absent"
            for name, tier in stats.items()
            if isinstance(tier, dict)
        )
        print(
            f"\n{size}x{size} card-2 backend tiers ({len(sample)} faults x "
            f"{len(vectors)} vectors): {per_tier} -> tile "
            f"{stats['tile_speedup_vs_word']:.2f}x over word"
        )
    assert stats["tile_speedup_vs_word"] >= TILE_MIN_SPEEDUP, stats


def _alloc_readings_reference(kernel, open_mask, blocked_mask=0):
    """The pre-hoist scalar BFS: fresh deque + bytearray per query."""
    n_sinks = kernel.n_sinks
    hits = [False] * n_sinks
    seen = bytearray(kernel.n_nodes)
    queue = deque()
    for s in kernel._source_idx:
        seen[s] = 1
        queue.append(s)
    out = kernel._out
    sink_pos = kernel._sink_pos
    found = 0
    while queue and found < n_sinks:
        for w, vi, ei in out[queue.popleft()]:
            if seen[w]:
                continue
            if vi >= 0 and not (open_mask >> vi) & 1:
                continue
            if blocked_mask and ei >= 0 and (blocked_mask >> ei) & 1:
                continue
            seen[w] = 1
            sp = sink_pos[w]
            if sp >= 0:
                hits[sp] = True
                found += 1
            queue.append(w)
    return dict(zip(kernel.sink_names, hits))


def _bench_scalar_readings(kernel, masks):
    def best_of(fn, reps=5):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            for mask in masks:
                fn(mask)
            best = min(best, time.perf_counter() - t0)
        return best

    for mask in masks[:100]:  # exactness before wall-clock, as everywhere
        assert kernel._scalar_readings(mask) == _alloc_readings_reference(
            kernel, mask
        )
    t_hoisted = best_of(lambda m: kernel._scalar_readings(m))
    t_alloc = best_of(lambda m: _alloc_readings_reference(kernel, m))
    return {
        "queries": len(masks),
        "hoisted_queries_per_second": len(masks) / t_hoisted,
        "alloc_queries_per_second": len(masks) / t_alloc,
        "hoisted_vs_alloc": t_alloc / t_hoisted,
    }


def test_scalar_readings_microbench(benchmark, capsys):
    """Satellite pin: the hoisted scalar path stays fast and stays hoisted.

    Two assertions: an absolute queries/s floor with ~5x headroom (catches
    an accidental reroute through the batched numpy path outright), and a
    hoisted-vs-allocating ratio floor (catches the hoist regressing below
    the formulation it replaced).
    """
    fpva = full_layout(8, 8, name="scalar-bench-8x8")
    kernel = ReachabilityKernel(fpva)
    rng = random.Random(1)
    masks = [rng.getrandbits(kernel.n_valves) for _ in range(SCALAR_QUERIES)]
    stats = pedantic_once(benchmark, _bench_scalar_readings, kernel, masks)
    benchmark.extra_info.update(stats)
    _record("scalar_readings_8x8", stats)
    with capsys.disabled():
        print(
            f"\n8x8 scalar readings: hoisted "
            f"{stats['hoisted_queries_per_second']:.0f} q/s vs allocating "
            f"{stats['alloc_queries_per_second']:.0f} q/s "
            f"-> {stats['hoisted_vs_alloc']:.2f}x"
        )
    assert stats["hoisted_queries_per_second"] >= SCALAR_MIN_QPS, stats
    assert stats["hoisted_vs_alloc"] >= SCALAR_MIN_RATIO, stats
