"""Compiled bitmask kernel vs the retained legacy path.

Two acceptance measurements, both asserting exact result equality before
comparing wall-clock:

* **dictionary build** — the 8x8 ``max_cardinality=2`` stuck-at dictionary
  (~25k fault sets x full suite), the pure-Python object-graph engine one
  chip at a time vs the canonicalize-dedup-batch kernel path.  Floor: >=5x.
* **campaign throughput** — full-suite application over hundreds of random
  double-fault chips, object-engine ``Tester.run`` per chip vs one batched
  kernel evaluation (compile included).  Floor: >=3x.

Results are also written to ``BENCH_kernel.json`` (override with
``REPRO_BENCH_JSON``) so the perf trajectory is tracked across PRs;
``REPRO_BENCH_SMOKE=1`` shrinks the configuration for the CI smoke step.
"""

from __future__ import annotations

import json
import os
import random
import time

from benchmarks.conftest import BENCH_JSON, SMOKE, pedantic_once
from repro.core import generate_suite
from repro.engine import get_scenario
from repro.fpva import full_layout
from repro.sim import (
    BatchEvaluator,
    ChipUnderTest,
    CompiledFaultSet,
    FaultDictionary,
    Tester,
)
from repro.sim.faults import stuck_at_faults

SIZE = 6 if SMOKE else 8
DICT_MIN_SPEEDUP = 3.0 if SMOKE else 5.0
CAMPAIGN_MIN_SPEEDUP = 2.0 if SMOKE else 3.0
CAMPAIGN_TRIALS = 80 if SMOKE else 300


def _record(section: str, payload: dict) -> None:
    """Merge one section into the machine-readable bench JSON."""
    data = {}
    if os.path.exists(BENCH_JSON):
        try:
            with open(BENCH_JSON) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    data["config"] = {"size": SIZE, "smoke": SMOKE}
    with open(BENCH_JSON, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _bench_dictionary(fpva, vectors, universe):
    t0 = time.perf_counter()
    legacy = FaultDictionary(
        fpva, vectors, universe=universe, max_cardinality=2, backend="legacy"
    )
    t_legacy = time.perf_counter() - t0
    t0 = time.perf_counter()
    kernel = FaultDictionary(
        fpva, vectors, universe=universe, max_cardinality=2, backend="kernel"
    )
    t_kernel = time.perf_counter() - t0
    assert list(kernel._table.items()) == list(legacy._table.items())
    assert kernel.resolution() == legacy.resolution()
    return {
        "fault_sets": sum(len(v) for v in legacy._table.values()),
        "distinct_syndromes": legacy.distinct_syndromes,
        "legacy_seconds": t_legacy,
        "kernel_seconds": t_kernel,
        "speedup": t_legacy / t_kernel,
    }


def test_dictionary_build_speedup(benchmark, capsys):
    """Acceptance: >=5x on the 8x8 double-fault dictionary build."""
    fpva = full_layout(SIZE, SIZE, name=f"kernel-bench-{SIZE}x{SIZE}")
    vectors = generate_suite(fpva).all_vectors()
    universe = stuck_at_faults(fpva)
    stats = pedantic_once(benchmark, _bench_dictionary, fpva, vectors, universe)
    benchmark.extra_info.update(stats)
    _record(f"dictionary_build_{SIZE}x{SIZE}_card2", stats)
    with capsys.disabled():
        print(
            f"\n{SIZE}x{SIZE} card-2 dictionary ({stats['fault_sets']} fault "
            f"sets, {len(vectors)} vectors): legacy "
            f"{stats['legacy_seconds']:.2f}s vs kernel "
            f"{stats['kernel_seconds']:.2f}s -> {stats['speedup']:.1f}x"
        )
    assert stats["speedup"] >= DICT_MIN_SPEEDUP, stats


def _bench_campaign(fpva, vectors, trials):
    scenario = get_scenario("stuck-at")
    universe = scenario.universe(fpva)
    rng = random.Random(0)
    chips = [scenario.sample(universe, rng, 2) for _ in range(trials)]
    legacy_tester = Tester(fpva, engine="object")  # pure-Python reference

    t0 = time.perf_counter()
    legacy_syndromes = [
        legacy_tester.run(ChipUnderTest(fpva, faults), vectors).syndrome()
        for faults in chips
    ]
    t_legacy = time.perf_counter() - t0

    t0 = time.perf_counter()  # kernel compile is part of the batched cost
    evaluator = BatchEvaluator(Tester(fpva).simulator.kernel, vectors)
    fires_cache: dict = {}
    rows = [
        evaluator.slot_row(CompiledFaultSet(evaluator.kernel, faults, fires_cache))
        for faults in chips
    ]
    evaluator.flush()
    names = [v.name for v in vectors]
    kernel_syndromes = [
        tuple(
            (names[vi], evaluator.observed_items(slot))
            for vi, slot in enumerate(row)
            if not evaluator.passed(vi, slot)
        )
        for row in rows
    ]
    t_kernel = time.perf_counter() - t0

    assert kernel_syndromes == legacy_syndromes
    return {
        "trials": trials,
        "vectors": len(vectors),
        "distinct_scenarios": evaluator.distinct_scenarios,
        "legacy_seconds": t_legacy,
        "kernel_seconds": t_kernel,
        "speedup": t_legacy / t_kernel,
        "legacy_chips_per_second": trials / t_legacy,
        "kernel_chips_per_second": trials / t_kernel,
    }


def test_campaign_throughput_speedup(benchmark, capsys):
    """Acceptance: >=3x full-suite campaign throughput."""
    fpva = full_layout(SIZE, SIZE, name=f"kernel-bench-{SIZE}x{SIZE}")
    vectors = generate_suite(fpva).all_vectors()
    stats = pedantic_once(benchmark, _bench_campaign, fpva, vectors, CAMPAIGN_TRIALS)
    benchmark.extra_info.update(stats)
    _record(f"campaign_full_suite_throughput_{SIZE}x{SIZE}", stats)
    with capsys.disabled():
        print(
            f"\n{SIZE}x{SIZE} full-suite campaign ({stats['trials']} chips x "
            f"{stats['vectors']} vectors, {stats['distinct_scenarios']} "
            f"distinct states): legacy {stats['legacy_chips_per_second']:.0f} "
            f"chips/s vs kernel {stats['kernel_chips_per_second']:.0f} "
            f"chips/s -> {stats['speedup']:.1f}x"
        )
    assert stats["speedup"] >= CAMPAIGN_MIN_SPEEDUP, stats
